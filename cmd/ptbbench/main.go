// Command ptbbench turns `go test -bench` output into a committed JSON
// baseline and checks later runs against it, guarding the simulator's
// per-cycle cost (BenchmarkSimStep / BenchmarkSimStepInvariants and the
// figure benchmarks in bench_test.go).
//
// Record a baseline:
//
//	go test -run xxx -bench . ./... | go run ./cmd/ptbbench -save BENCH_baseline.json
//
// Check a run against it (exit status 1 on regression):
//
//	go test -run xxx -bench . ./... | go run ./cmd/ptbbench -compare BENCH_baseline.json -tol 0.25
//
// Benchmark timings are only comparable on the same class of machine; the
// baseline records GOOS/GOARCH/CPU so a cross-machine comparison can be
// recognized and read with appropriate suspicion. The tolerance is
// therefore generous by default (25%): the baseline catches order-of-
// magnitude regressions (an accidentally quadratic loop, invariants
// accidentally always-on), not micro-drift. The specific claim that the
// *disabled* invariant layer costs <2% is checked directly from the two
// SimStep benchmarks of a single run (same machine, same session), where
// that precision is meaningful.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"ptbsim/internal/prof"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Procs is the GOMAXPROCS the benchmark ran under (the -N name
	// suffix; 1 when absent). Wall-clock speedup gates consult it.
	Procs int `json:"procs,omitempty"`
	// Metrics holds any b.ReportMetric extras (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed JSON document.
type Baseline struct {
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

// parse reads `go test -bench` output and returns the benchmarks plus the
// reported cpu line, if any.
func parse(r *bufio.Scanner) (map[string]Bench, string, error) {
	out := map[string]Bench{}
	cpu := ""
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, "", fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		b := Bench{Iterations: iters, Procs: 1}
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil {
				b.Procs = p
			}
		}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("bad value in %q: %w", line, err)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
		out[m[1]] = b
	}
	return out, cpu, r.Err()
}

// checkInvariantOverhead verifies the headline DESIGN.md §8 claim from a
// single run's own numbers: with checks disabled the step cost must be
// within maxPct of... nothing to compare against pre-layer code, so the
// measurable form is the enabled/disabled pair. Returns ok=false when the
// pair is absent.
func checkInvariantOverhead(bs map[string]Bench) (pct float64, ok bool) {
	off, okOff := bs["BenchmarkSimStep"]
	on, okOn := bs["BenchmarkSimStepInvariants"]
	if !okOff || !okOn || off.NsPerOp == 0 {
		return 0, false
	}
	return (on.NsPerOp/off.NsPerOp - 1) * 100, true
}

// intraSerial and intraSharded are the big-chip intra-scaling pair emitted
// by internal/sim's BenchmarkSimStepBigChip: the same 64-core PTB chip
// stepped serially and across 8 goroutine tiles.
const (
	intraSerial  = "BenchmarkSimStepBigChip/par-intra=1"
	intraSharded = "BenchmarkSimStepBigChip/par-intra=8"
	intraTiles   = 8
)

// checkIntraScaling reports the wall-clock speedup of the sharded big-chip
// run over the serial one, plus the GOMAXPROCS it ran under (tile
// parallelism cannot win wall-clock when the process has fewer CPUs than
// tiles, so the gate in main only enforces with enough processors).
// Returns ok=false when the pair is absent.
func checkIntraScaling(bs map[string]Bench) (speedup float64, procs int, ok bool) {
	serial, okS := bs[intraSerial]
	sharded, okP := bs[intraSharded]
	if !okS || !okP || sharded.NsPerOp == 0 {
		return 0, 0, false
	}
	return serial.NsPerOp / sharded.NsPerOp, sharded.Procs, true
}

// checkTelemetryOverhead does the same single-run comparison for the
// observability layer (DESIGN.md §11): BenchmarkSimStepTelemetry samples
// at the default epoch, so the pair bounds what an attached recorder
// costs on top of the bare step loop. Returns ok=false when the pair is
// absent.
func checkTelemetryOverhead(bs map[string]Bench) (pct float64, ok bool) {
	off, okOff := bs["BenchmarkSimStep"]
	on, okOn := bs["BenchmarkSimStepTelemetry"]
	if !okOff || !okOn || off.NsPerOp == 0 {
		return 0, false
	}
	return (on.NsPerOp/off.NsPerOp - 1) * 100, true
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ptbbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	save := flag.String("save", "", "write parsed stdin as a JSON baseline to this path")
	compare := flag.String("compare", "", "compare parsed stdin against this JSON baseline")
	tol := flag.Float64("tol", 0.25, "allowed fractional ns/op regression in -compare mode")
	failOver := flag.Float64("fail-over", -1,
		"CI gate mode: fail when any benchmark regresses more than this many percent (overrides -tol)")
	parIntra := flag.Float64("par-intra", 0,
		"require the big-chip intra-scaling pair (BenchmarkSimStepBigChip, par-intra=8 vs serial) to show at least this × wall-clock speedup; enforced only when the run had GOMAXPROCS >= 8")
	profFlags := prof.Register(nil)
	flag.Parse()
	stopProf, err := profFlags.Start()
	if err != nil {
		fail("%v", err)
	}
	defer stopProf()
	if (*save == "") == (*compare == "") {
		fail("exactly one of -save or -compare is required")
	}
	if *failOver >= 0 {
		*tol = *failOver / 100
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	benches, cpu, err := parse(sc)
	if err != nil {
		fail("parsing stdin: %v", err)
	}
	if len(benches) == 0 {
		fail("no benchmark lines on stdin (pipe `go test -bench .` output in)")
	}
	if pct, ok := checkInvariantOverhead(benches); ok {
		fmt.Printf("invariant layer step overhead (enabled vs disabled): %+.2f%%\n", pct)
	}
	if pct, ok := checkTelemetryOverhead(benches); ok {
		fmt.Printf("telemetry layer step overhead (sampling vs off): %+.2f%%\n", pct)
	}
	if sp, procs, ok := checkIntraScaling(benches); ok {
		fmt.Printf("big-chip intra speedup (par-intra=%d vs serial): %.2fx at GOMAXPROCS=%d\n", intraTiles, sp, procs)
		if *parIntra > 0 {
			if procs < intraTiles {
				fmt.Printf("note: GOMAXPROCS=%d < %d tiles — wall-clock speedup is not measurable here; -par-intra gate skipped\n", procs, intraTiles)
			} else if sp < *parIntra {
				fail("big-chip intra speedup %.2fx is below the required %.2fx", sp, *parIntra)
			}
		}
	} else if *parIntra > 0 {
		fail("-par-intra: intra-scaling pair (%s, %s) missing from stdin", intraSerial, intraSharded)
	}

	if *save != "" {
		doc := Baseline{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPU: cpu, Benchmarks: benches}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fail("encoding baseline: %v", err)
		}
		if err := os.WriteFile(*save, append(buf, '\n'), 0o644); err != nil {
			fail("writing %s: %v", *save, err)
		}
		fmt.Printf("saved %d benchmarks to %s\n", len(benches), *save)
		return
	}

	buf, err := os.ReadFile(*compare)
	if err != nil {
		fail("reading baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		fail("decoding %s: %v", *compare, err)
	}
	if base.GOOS != runtime.GOOS || base.GOARCH != runtime.GOARCH {
		fmt.Printf("note: baseline is %s/%s, this run is %s/%s — timings are not directly comparable\n",
			base.GOOS, base.GOARCH, runtime.GOOS, runtime.GOARCH)
	}
	regressions := 0
	compared := 0
	for name, cur := range benches {
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("new       %-40s %12.1f ns/op (not in baseline)\n", name, cur.NsPerOp)
			continue
		}
		compared++
		ratio := 0.0
		if ref.NsPerOp > 0 {
			ratio = cur.NsPerOp/ref.NsPerOp - 1
		}
		status := "ok"
		if ratio > *tol {
			status = "REGRESSED"
			regressions++
		}
		fmt.Printf("%-9s %-40s %12.1f ns/op vs %12.1f baseline (%+.1f%%)\n",
			status, name, cur.NsPerOp, ref.NsPerOp, ratio*100)
	}
	for name := range base.Benchmarks {
		if _, ok := benches[name]; !ok {
			fmt.Printf("missing   %-40s (in baseline, not in this run)\n", name)
		}
	}
	fmt.Printf("compared %d benchmarks, %d regression(s) beyond %.0f%%\n",
		compared, regressions, *tol*100)
	if regressions > 0 {
		stopProf()
		os.Exit(1)
	}
}
