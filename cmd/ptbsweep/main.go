// Command ptbsweep regenerates the paper's tables and figures as text
// tables. Each experiment is identified by its paper artifact id. Runs
// execute on the parallel experiment engine: `-par N` bounds the worker
// pool (simulations are deterministic, so the output is byte-identical at
// any parallelism), and SIGINT cancels the sweep cleanly mid-run instead
// of completing the cross-product.
//
// Usage:
//
//	ptbsweep -exp fig2                 # one figure at the default scale
//	ptbsweep -exp all -scale 0.25      # everything, shortened workloads
//	ptbsweep -exp all -par 16          # same output, 16 parallel simulations
//	ptbsweep -exp fig9 -cores 2,4,8    # restrict the core sweep
//	ptbsweep -exp fig10 -benches ocean,radix,fft
//
// Workload scale trades fidelity for time: the paper shapes are stable
// from about scale 0.25; scale 1.0 runs the full Table-2-calibrated sizes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"ptbsim"
	"ptbsim/internal/core"
	"ptbsim/internal/fault"
	"ptbsim/internal/obs"
	"ptbsim/internal/prof"
	"ptbsim/internal/sim"
)

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1,table2,fig2,fig3,fig4,fig8,fig9,fig10,fig11,fig12,fig13,fig14,sec4d,ext,all")
		scale   = flag.Float64("scale", 0.25, "workload scale (1.0 = Table 2 size)")
		cores   = flag.String("cores", "", "comma-separated core counts (default 2,4,8,16)")
		benches = flag.String("benches", "", "comma-separated benchmarks (default all 14)")
		relax   = flag.Float64("relax", 0.20, "fig14 relaxed threshold")
		big     = flag.Int("bigcores", 16, "core count for the detailed figures (2/10/11/12/13)")
		quiet   = flag.Bool("q", false, "suppress per-run progress")
		par     = flag.Int("par", runtime.NumCPU(), "parallel simulations (1 = serial; output is identical at any value)")
		format  = flag.String("format", "text", "output format: text, md, csv")
		check   = flag.Bool("check", false, "enable runtime invariant checks on every run (fails on any violation)")
		outPath = flag.String("o", "", "write output to this file instead of stdout (for go:generate)")
		parIn   = flag.Int("par-intra", 0, "shard each simulated chip across up to this many goroutine-stepped tiles (0 = serial; each chip uses the largest divisor of its core count that fits; output is identical at any value)")
	)
	var faults fault.Flag
	flag.Var(&faults, "faults", "fault-injection spec applied to every run, e.g. seed=42,drop=0.25")
	var telemetry ptbsim.TelemetryFlag
	flag.Var(&telemetry, "telemetry", "stream epoch telemetry from every run into one merged feed, e.g. every=2048,out=sweep.jsonl")
	var checkpoint ptbsim.CheckpointFlag
	flag.Var(&checkpoint, "checkpoint", "make the sweep resumable through this directory, e.g. every=500000,dir=sweep-ckpt: finished cells persist and are skipped on restart, partial cells snapshot and resume (keys: every, dir, stop)")
	resume := flag.String("resume", "", "resume the sweep saved in this directory (shorthand for -checkpoint dir=DIR at the default cadence)")
	profFlags := prof.Register(nil)
	flag.Parse()
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The figure builders run cached results through the context-free
	// Runner API; a cancelled bound context surfaces as a panic that the
	// handler below turns into a clean exit.
	defer exitOnInterrupt()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		out = f
	}

	render := func(t *sim.Table) {
		switch *format {
		case "md":
			t.RenderMarkdown(out)
		case "csv":
			t.RenderCSV(out)
		default:
			t.Render(out)
		}
	}

	r := sim.NewRunner(*scale)
	r.Bind(ctx)
	r.SetParallelism(*par)
	r.CheckInvariants = *check
	r.Faults = faults.Spec
	r.IntraParallel = *parIn
	if *resume != "" && checkpoint.Spec == nil {
		checkpoint.Spec = &ptbsim.CheckpointSpec{Dir: *resume}
	}
	if checkpoint.Spec != nil {
		// One directory makes the whole sweep restartable: completed cells
		// persist in the cell store and are skipped, partial cells leave a
		// snapshot and resume mid-run byte-identically.
		ck := checkpoint.Spec.Checkpoint()
		st, err := r.SetStore(ck.Dir)
		if err != nil {
			fail(err)
		}
		if n := st.Rejected(); n > 0 {
			fmt.Fprintf(os.Stderr, "ptbsweep: %d unreadable cell files skipped (recomputing those cells)\n", n)
		}
		if n := st.Len(); n > 0 && !*quiet {
			fmt.Fprintf(os.Stderr, "ptbsweep: resuming: %d completed cells loaded from %s\n", n, ck.Dir)
		}
		r.CheckpointEvery = ck.Every
		r.CheckpointDir = ck.Dir
		r.CheckpointStop = ck.StopAfter
		defer func() {
			if err := st.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "ptbsweep:", err)
			}
		}()
	}
	if telemetry.Spec != nil {
		tel, closeTel, err := telemetry.Spec.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Runs execute in parallel, so the shared sink is serialized into
		// one merged feed; the per-sample run tags keep it unambiguous.
		r.Observe = &obs.Config{Every: tel.Every, Ring: tel.Ring, Sink: obs.Synchronized(tel.Observer)}
		defer func() {
			if err := closeTel(); err != nil {
				fmt.Fprintln(os.Stderr, "ptbsweep: telemetry:", err)
			}
		}()
	}
	if !*quiet {
		r.Progress = os.Stderr
	}

	bs := sim.AllBenchmarks()
	if *benches != "" {
		bs = strings.Split(*benches, ",")
	}
	ccs := sim.CoreCounts()
	if *cores != "" {
		ccs = nil
		for _, s := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -cores:", err)
				os.Exit(2)
			}
			ccs = append(ccs, n)
		}
	}

	run := func(id string) {
		switch id {
		case "table1":
			render(r.Table1())
		case "table2":
			render(r.Table2())
		case "fig2":
			render(r.Fig2(bs, *big))
		case "fig3":
			render(r.Fig3(bs, ccs))
		case "fig4":
			render(r.Fig4(bs, ccs))
		case "fig8":
			render(r.Fig8())
		case "fig9":
			render(r.Fig9(bs, ccs))
		case "fig10":
			render(r.FigDetail("Figure 10", bs, *big, core.PolicyToAll))
		case "fig11":
			render(r.FigDetail("Figure 11", bs, *big, core.PolicyToOne))
		case "fig12":
			render(r.FigDetail("Figure 12", bs, *big, core.PolicyDynamic))
		case "fig13":
			render(r.Fig13(bs, *big))
		case "fig14":
			render(r.Fig14(bs, ccs, *relax))
		case "sec4d":
			render(r.Sec4D(bs, *big))
		case "ext":
			lockBound := []string{"raytrace", "unstructured", "waternsq", "fluidanimate"}
			if *benches != "" {
				lockBound = bs
			}
			render(r.FigExt(lockBound, *big))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		// Precompute every needed run on the worker pool; the figure
		// builders then assemble tables from the cache.
		ccWarm := ccs
		if !contains(ccWarm, *big) {
			ccWarm = append(append([]int(nil), ccWarm...), *big)
		}
		if err := r.WarmContext(ctx, bs, ccWarm, *relax); err != nil {
			fail(err)
		}
		for _, id := range []string{"table1", "table2", "fig2", "fig3", "fig4",
			"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "sec4d", "ext"} {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ptbsweep: interrupted")
		os.Exit(130)
	}
	if errors.Is(err, ptbsim.ErrRunStopped) {
		fmt.Fprintln(os.Stderr, "ptbsweep: crash drill stop:", err)
		fmt.Fprintln(os.Stderr, "ptbsweep: rerun with the same -checkpoint dir to resume")
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// exitOnInterrupt converts the cancellation (and crash-drill) panics of
// the legacy Runner path into the same clean exits as fail.
func exitOnInterrupt() {
	p := recover()
	if p == nil {
		return
	}
	if err, ok := p.(error); ok &&
		(errors.Is(err, context.Canceled) || errors.Is(err, ptbsim.ErrRunStopped)) {
		fail(err)
	}
	panic(p)
}
