// Command ptbsweep regenerates the paper's tables and figures as text
// tables. Each experiment is identified by its paper artifact id.
//
// Usage:
//
//	ptbsweep -exp fig2                 # one figure at the default scale
//	ptbsweep -exp all -scale 0.25      # everything, shortened workloads
//	ptbsweep -exp fig9 -cores 2,4,8    # restrict the core sweep
//	ptbsweep -exp fig10 -benches ocean,radix,fft
//
// Workload scale trades fidelity for time: the paper shapes are stable
// from about scale 0.25; scale 1.0 runs the full Table-2-calibrated sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"ptbsim/internal/core"
	"ptbsim/internal/sim"
)

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1,table2,fig2,fig3,fig4,fig8,fig9,fig10,fig11,fig12,fig13,fig14,sec4d,ext,all")
		scale   = flag.Float64("scale", 0.25, "workload scale (1.0 = Table 2 size)")
		cores   = flag.String("cores", "", "comma-separated core counts (default 2,4,8,16)")
		benches = flag.String("benches", "", "comma-separated benchmarks (default all 14)")
		relax   = flag.Float64("relax", 0.20, "fig14 relaxed threshold")
		big     = flag.Int("bigcores", 16, "core count for the detailed figures (2/10/11/12/13)")
		quiet   = flag.Bool("q", false, "suppress per-run progress")
		par     = flag.Int("par", runtime.NumCPU(), "parallel simulations during warm-up")
		format  = flag.String("format", "text", "output format: text, md, csv")
	)
	flag.Parse()

	render := func(t *sim.Table) {
		switch *format {
		case "md":
			t.RenderMarkdown(os.Stdout)
		case "csv":
			t.RenderCSV(os.Stdout)
		default:
			t.Render(os.Stdout)
		}
	}

	r := sim.NewRunner(*scale)
	if !*quiet {
		r.Progress = os.Stderr
	}

	bs := sim.AllBenchmarks()
	if *benches != "" {
		bs = strings.Split(*benches, ",")
	}
	ccs := sim.CoreCounts()
	if *cores != "" {
		ccs = nil
		for _, s := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -cores:", err)
				os.Exit(2)
			}
			ccs = append(ccs, n)
		}
	}

	run := func(id string) {
		switch id {
		case "table1":
			render(r.Table1())
		case "table2":
			render(r.Table2())
		case "fig2":
			render(r.Fig2(bs, *big))
		case "fig3":
			render(r.Fig3(bs, ccs))
		case "fig4":
			render(r.Fig4(bs, ccs))
		case "fig8":
			render(r.Fig8())
		case "fig9":
			render(r.Fig9(bs, ccs))
		case "fig10":
			render(r.FigDetail("Figure 10", bs, *big, core.PolicyToAll))
		case "fig11":
			render(r.FigDetail("Figure 11", bs, *big, core.PolicyToOne))
		case "fig12":
			render(r.FigDetail("Figure 12", bs, *big, core.PolicyDynamic))
		case "fig13":
			render(r.Fig13(bs, *big))
		case "fig14":
			render(r.Fig14(bs, ccs, *relax))
		case "sec4d":
			render(r.Sec4D(bs, *big))
		case "ext":
			lockBound := []string{"raytrace", "unstructured", "waternsq", "fluidanimate"}
			if *benches != "" {
				lockBound = bs
			}
			render(r.FigExt(lockBound, *big))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		// Precompute every needed run on all cores; the figure builders
		// then assemble tables from the cache.
		ccWarm := ccs
		if !contains(ccWarm, *big) {
			ccWarm = append(append([]int(nil), ccWarm...), *big)
		}
		r.Warm(bs, ccWarm, *relax, *par)
		for _, id := range []string{"table1", "table2", "fig2", "fig3", "fig4",
			"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "sec4d", "ext"} {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}
