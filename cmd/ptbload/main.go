// Command ptbload load-tests a live ptbserve instance: it replays many
// concurrent run or sweep requests — most of them duplicates — and
// reports what the service's dedup and cache layers did with them:
// fresh/coalesced/cached counts, hit rates, rejection (429) counts, and
// client-observed latency percentiles. Backpressure is handled the way a
// well-behaved client should: a 429 is retried within a budget, honoring
// the server's Retry-After with jitter, and retried versus abandoned
// requests are reported separately from hard failures. With every request
// carrying a result digest, the output doubles as a correctness probe:
// across concurrency, cache warmth, and server restarts, a configuration
// must always answer with one byte-identical digest.
//
// Usage:
//
//	ptbload -addr localhost:8177 -n 200 -c 32            # 200 duplicate sweeps, 32 in flight
//	ptbload -addr localhost:8177 -mode runs -n 500 -c 64
//	ptbload -addr localhost:8177 -n 200 -assert-single-flight -assert-hit-rate 0.99
//
// Exit status: 0 on success, 1 when an assertion fails, 2 on usage or
// transport errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// runResponse mirrors the server's per-configuration answer (the fields
// the harness needs).
type runResponse struct {
	Digest    string `json:"digest"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
	Error     string `json:"error,omitempty"`
}

// sweepResponse mirrors the server's sweep answer.
type sweepResponse struct {
	Total     int           `json:"total"`
	Fresh     int           `json:"fresh"`
	Cached    int           `json:"cached"`
	Coalesced int           `json:"coalesced"`
	Failed    int           `json:"failed"`
	Results   []runResponse `json:"results"`
}

// outcome is one request's client-side record.
type outcome struct {
	status    int
	latency   time.Duration
	fresh     int
	cached    int
	coalesced int
	failed    int
	retries   int            // 429 responses retried (honoring Retry-After) before this outcome
	abandoned bool           // still 429 after the retry budget ran out
	digests   map[int]string // result slot → digest
	err       error
}

// retryAfter turns a 429's Retry-After header into a bounded, jittered
// sleep: the server's hint (default 1s when absent or unparseable, capped
// at 10s) plus up to 50% random jitter so a fleet of backed-off clients
// doesn't stampede back in lockstep.
func retryAfter(resp *http.Response) time.Duration {
	secs := 1.0
	if v := resp.Header.Get("Retry-After"); v != "" {
		if parsed, err := strconv.ParseFloat(v, 64); err == nil && parsed >= 0 {
			secs = parsed
		}
	}
	if secs > 10 {
		secs = 10
	}
	base := time.Duration(secs * float64(time.Second))
	return base + time.Duration(rand.Int63n(int64(base/2)+1))
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:8177", "ptbserve host:port")
		mode    = flag.String("mode", "sweep", "request shape: sweep (duplicate cross-products) or runs (duplicate single configs)")
		n       = flag.Int("n", 200, "total requests to send")
		c       = flag.Int("c", 32, "concurrent requests in flight")
		scale   = flag.Float64("scale", 0, "workload_scale sent in each config (0 = server default)")
		benches = flag.String("benches", "fft,radix", "benchmarks in the request set")
		cores   = flag.String("cores", "2,4", "core counts in the request set")
		techs   = flag.String("techs", "none,ptb", "techniques in the request set")
		timeout = flag.Duration("timeout", 10*time.Minute, "per-request timeout")

		retries = flag.Int("retries", 3, "retry budget per request after a 429, honoring Retry-After with jitter (0 = give up immediately)")

		assertSF  = flag.Bool("assert-single-flight", false, "fail unless every unique config was simulated exactly once (fresh == unique)")
		assertHit = flag.Float64("assert-hit-rate", -1, "fail unless the cached fraction of answered configs is at least this (e.g. 0.99)")
	)
	flag.Parse()
	if *n < 1 || *c < 1 {
		fmt.Fprintln(os.Stderr, "ptbload: -n and -c must be positive")
		os.Exit(2)
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}

	sweepBody := map[string]any{
		"benchmarks": strings.Split(*benches, ","),
		"techniques": strings.Split(*techs, ","),
	}
	var coreList []int
	for _, s := range strings.Split(*cores, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil {
			fmt.Fprintln(os.Stderr, "ptbload: bad -cores:", err)
			os.Exit(2)
		}
		coreList = append(coreList, v)
	}
	sweepBody["core_counts"] = coreList

	// In runs mode each request carries one config, cycling through the
	// same cross-product the sweep mode asks for in bulk.
	type runCfg struct {
		Benchmark     string  `json:"benchmark"`
		Cores         int     `json:"cores"`
		Technique     string  `json:"technique"`
		WorkloadScale float64 `json:"workload_scale,omitempty"`
	}
	var runSet []runCfg
	for _, b := range strings.Split(*benches, ",") {
		for _, cc := range coreList {
			for _, t := range strings.Split(*techs, ",") {
				runSet = append(runSet, runCfg{
					Benchmark: strings.TrimSpace(b), Cores: cc,
					Technique: strings.TrimSpace(t), WorkloadScale: *scale,
				})
			}
		}
	}
	unique := len(runSet)

	// Health check before unleashing the fleet.
	if resp, err := client.Get(base + "/healthz"); err != nil {
		fmt.Fprintln(os.Stderr, "ptbload: server unreachable:", err)
		os.Exit(2)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	post := func(path string, body any) outcome {
		buf, _ := json.Marshal(body)
		start := time.Now()
		var resp *http.Response
		retried := 0
		for {
			var err error
			resp, err = client.Post(base+path, "application/json", bytes.NewReader(buf))
			if err != nil {
				return outcome{err: err, retries: retried}
			}
			if resp.StatusCode != http.StatusTooManyRequests || retried >= *retries {
				break
			}
			// Backpressure: honor the server's Retry-After (with jitter)
			// and try again within the budget.
			sleep := retryAfter(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			retried++
			time.Sleep(sleep)
		}
		defer resp.Body.Close()
		o := outcome{status: resp.StatusCode, latency: time.Since(start), retries: retried, digests: map[int]string{}}
		if resp.StatusCode != http.StatusOK {
			o.abandoned = resp.StatusCode == http.StatusTooManyRequests
			io.Copy(io.Discard, resp.Body)
			return o
		}
		if path == "/v1/sweeps" {
			var sr sweepResponse
			if o.err = json.NewDecoder(resp.Body).Decode(&sr); o.err != nil {
				return o
			}
			o.fresh, o.cached, o.coalesced, o.failed = sr.Fresh, sr.Cached, sr.Coalesced, sr.Failed
			for i, r := range sr.Results {
				o.digests[i] = r.Digest
			}
			return o
		}
		var rr runResponse
		if o.err = json.NewDecoder(resp.Body).Decode(&rr); o.err != nil {
			return o
		}
		switch {
		case rr.Error != "":
			o.failed = 1
		case rr.Cached:
			o.cached = 1
		case rr.Coalesced:
			o.coalesced = 1
		default:
			o.fresh = 1
		}
		o.digests[0] = rr.Digest
		return o
	}

	fmt.Fprintf(os.Stderr, "ptbload: %d %s requests (%d unique configs), %d in flight, against %s\n",
		*n, *mode, unique, *c, base)

	outcomes := make([]outcome, *n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, *c)
	wallStart := time.Now()
	for i := 0; i < *n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			switch *mode {
			case "runs":
				body := map[string]any{"config": runSet[i%len(runSet)]}
				outcomes[i] = post("/v1/runs", body)
			default:
				body := sweepBody
				if *scale != 0 {
					// Sweep configs inherit the server's default scale; the
					// flag only applies to runs mode.
					fmt.Fprintln(os.Stderr, "ptbload: note: -scale is ignored in sweep mode")
				}
				outcomes[i] = post("/v1/sweeps", body)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(wallStart)

	// Aggregate.
	var (
		ok, rejected, failedReqs int
		retried, abandoned       int
		fresh, cached, coalesced int
		failedCfgs               int
		latencies                []time.Duration
		digestByKey              = map[string]string{}
		digestConflict           bool
	)
	for _, o := range outcomes {
		retried += o.retries
		if o.abandoned {
			abandoned++
		}
		if o.err != nil {
			failedReqs++
			fmt.Fprintln(os.Stderr, "ptbload: request error:", o.err)
			continue
		}
		switch o.status {
		case http.StatusOK:
			ok++
			latencies = append(latencies, o.latency)
			fresh += o.fresh
			cached += o.cached
			coalesced += o.coalesced
			failedCfgs += o.failed
			for slot, d := range o.digests {
				key := fmt.Sprintf("%s/%d", *mode, slot)
				if prev, seen := digestByKey[key]; seen && prev != d {
					digestConflict = true
					fmt.Fprintf(os.Stderr, "ptbload: DIGEST CONFLICT at %s: %s vs %s\n", key, prev, d)
				} else {
					digestByKey[key] = d
				}
			}
		case http.StatusTooManyRequests:
			rejected++
		default:
			failedReqs++
			fmt.Fprintf(os.Stderr, "ptbload: unexpected status %d\n", o.status)
		}
	}

	answered := fresh + cached + coalesced + failedCfgs
	hitRate := 0.0
	if answered > 0 {
		hitRate = float64(cached) / float64(answered)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}

	fmt.Printf("requests        %d ok, %d rejected (429), %d errors in %v\n", ok, rejected, failedReqs, wall.Round(time.Millisecond))
	fmt.Printf("backpressure    %d retried 429s (Retry-After honored), %d abandoned after %d retries\n",
		retried, abandoned, *retries)
	fmt.Printf("configs         %d answered: %d fresh, %d coalesced, %d cached, %d failed\n",
		answered, fresh, coalesced, cached, failedCfgs)
	fmt.Printf("unique configs  %d\n", unique)
	fmt.Printf("cache hit rate  %.4f\n", hitRate)
	fmt.Printf("latency         p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
		pct(0.99).Round(time.Millisecond), pct(1.0).Round(time.Millisecond))
	for _, key := range sortedKeys(digestByKey) {
		fmt.Printf("digest          %s %s\n", key, digestByKey[key])
	}

	exit := 0
	if digestConflict {
		fmt.Println("FAIL: the same request slot answered with different digests")
		exit = 1
	}
	if failedReqs > 0 || failedCfgs > 0 {
		fmt.Println("FAIL: request or configuration errors")
		exit = 1
	}
	if *assertSF && fresh != unique {
		fmt.Printf("FAIL: single-flight violated: %d fresh simulations for %d unique configs\n", fresh, unique)
		exit = 1
	}
	if *assertHit >= 0 && hitRate < *assertHit {
		fmt.Printf("FAIL: cache hit rate %.4f below required %.4f\n", hitRate, *assertHit)
		exit = 1
	}
	if exit == 0 {
		fmt.Println("PASS")
	}
	os.Exit(exit)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
