// Command ptbgolden regenerates the golden run digests under
// testdata/golden/: one deterministic fingerprint line per configuration of
// the technique×benchmark matrix (see Result.Digest for the format). The
// committed file is the whole-simulator regression baseline — any
// behavioral change to the pipeline, caches, NoC, power model or budget
// controllers shifts at least one digest, and the golden test catches it.
//
// Output is byte-stable: no timestamps, deterministic run order, and
// digests independent of -par (simulations are single-threaded and
// deterministic). Invariant checking is on by default so a regenerated
// baseline is also a certified zero-violation matrix.
//
// Usage:
//
//	go generate ./...                   # rewrites testdata/golden/
//	ptbgolden -o matrix.txt -par 8
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"ptbsim"
	"ptbsim/internal/prof"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.25, "workload scale (matches the committed baseline)")
		cores   = flag.String("cores", "4", "comma-separated CMP sizes for the matrix")
		benches = flag.String("benches", "", "comma-separated benchmarks (default: all 14)")
		techsIn = flag.String("techs", "", "comma-separated techniques (default: all)")
		cluster = flag.Int("cluster", 0, "PTB cluster size applied to the PTB-family runs (0 = one chip-wide balancer)")
		par     = flag.Int("par", runtime.NumCPU(), "parallel simulations (output is identical at any value)")
		parIn   = flag.Int("par-intra", 0, "shard each simulated chip across up to this many goroutine-stepped tiles (0 = serial; each chip uses the largest divisor of its core count that fits; digests are identical at any value)")
		check   = flag.Bool("check", true, "enable runtime invariant checks on every run")
		quiet   = flag.Bool("q", false, "suppress per-run progress")
		outPath = flag.String("o", "", "output file (default stdout)")
	)
	var faults ptbsim.FaultSpecFlag
	flag.Var(&faults, "faults", "fault-injection spec applied to every run (a zero-rate spec must reproduce the committed baseline byte-for-byte)")
	var telemetry ptbsim.TelemetryFlag
	flag.Var(&telemetry, "telemetry", "stream epoch telemetry from every run, e.g. every=2048,out=golden.jsonl (digests are identical with or without it)")
	profFlags := prof.Register(nil)
	flag.Parse()
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		out = f
	}

	opts := []ptbsim.Option{
		ptbsim.WithScale(*scale),
		ptbsim.WithParallelism(*par),
	}
	if *check {
		opts = append(opts, ptbsim.WithInvariants())
	}
	if faults.Spec != nil {
		opts = append(opts, ptbsim.WithFaults(*faults.Spec))
	}
	if *parIn > 0 {
		opts = append(opts, ptbsim.WithIntraParallel(*parIn))
	}
	if telemetry.Spec != nil {
		tel, closeTel, err := telemetry.Spec.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts = append(opts, ptbsim.WithObserver(tel.Every, tel.Observer), ptbsim.WithObserverRing(tel.Ring))
		defer func() {
			if err := closeTel(); err != nil {
				fmt.Fprintln(os.Stderr, "ptbgolden: telemetry:", err)
			}
		}()
	}
	if !*quiet {
		opts = append(opts, ptbsim.WithProgress(func(p ptbsim.Progress) {
			if p.Err == nil {
				fmt.Fprintf(os.Stderr, "ran %3d/%d %s/%d/%s\n",
					p.Done, p.Total, p.Config.Benchmark, p.Config.Cores, p.Config.Technique)
			}
		}))
	}
	e := ptbsim.NewExperiment(opts...)

	techNames := ptbsim.TechniqueNames()
	techLabel := "all"
	if *techsIn != "" {
		techNames = strings.Split(*techsIn, ",")
		techLabel = *techsIn
	}
	var techs []ptbsim.Technique
	for _, name := range techNames {
		t, err := ptbsim.ParseTechnique(name)
		if err != nil {
			fail(err)
		}
		techs = append(techs, t)
	}
	var coreCounts []int
	for _, s := range strings.Split(*cores, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fail(fmt.Errorf("ptbgolden: bad -cores entry %q: %w", s, err))
		}
		coreCounts = append(coreCounts, n)
	}
	sweep := ptbsim.Sweep{
		CoreCounts: coreCounts,
		Techniques: techs,
		// The PTB family runs its headline Dynamic policy; the policy
		// dimension collapses for every other technique.
		Policies: []ptbsim.Policy{ptbsim.Dynamic},
	}
	if *benches != "" {
		sweep.Benchmarks = strings.Split(*benches, ",")
	}
	cfgs := sweep.Configs()
	if *cluster > 0 {
		for i := range cfgs {
			if cfgs[i].Technique == ptbsim.PTB || cfgs[i].Technique == ptbsim.PTBSpinGate {
				cfgs[i].PTBClusterSize = *cluster
			}
		}
	}
	results, err := e.RunAll(ctx, cfgs)
	if err != nil {
		fail(err)
	}

	w := bufio.NewWriter(out)
	benchLabel := "all"
	if *benches != "" {
		benchLabel = *benches
	}
	fmt.Fprintf(w, "# golden run digests: cores=%s scale=%g benchmarks=%s techniques=%s policies=dynamic cluster=%d\n",
		*cores, *scale, benchLabel, techLabel, *cluster)
	fmt.Fprintf(w, "# regenerate: go generate ./...  (or: make golden)\n")
	for _, r := range results {
		fmt.Fprintln(w, r.Digest())
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ptbgolden: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
