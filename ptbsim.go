// Package ptbsim is a cycle-level chip-multiprocessor simulator built to
// reproduce "Power Token Balancing: Adapting CMPs to Power Constraints for
// Parallel Multithreaded Workloads" (Cebrián, Aragón, Kaxiras — IEEE IPDPS
// 2011).
//
// The library simulates a homogeneous CMP of out-of-order cores (Table 1 of
// the paper) over a MOESI directory protocol and a 2D-mesh NoC, executing
// synthetic reactive versions of the SPLASH-2/PARSEC workloads the paper
// evaluates, under a configurable global power budget enforced by one of
// the studied techniques: DVFS, DFS, the two-level hybrid, or Power Token
// Balancing (PTB) with the ToAll/ToOne/Dynamic distribution policies.
//
// Quick start:
//
//	r, err := ptbsim.RunContext(ctx, ptbsim.Config{
//		Benchmark: "ocean",
//		Cores:     8,
//		Technique: ptbsim.PTB,
//		Policy:    ptbsim.Dynamic,
//	})
//
// Results report the paper's metrics: total energy, Area over the Power
// Budget (AoPB), performance, the execution-time breakdown, spinning power
// and temperature statistics. Normalization helpers compare a run against
// its no-control base case exactly as the paper's figures do.
//
// The paper's evaluation is a large cross-product (14 benchmarks ×
// {2,4,8,16} cores × 7 techniques × 3 policies); NewExperiment runs such
// sweeps on a bounded worker pool with caching, single-flight
// deduplication, cancellation and streaming progress — see Experiment and
// Sweep.
package ptbsim

// The committed regression artifacts are regenerated with `go generate .`
// (or `make golden`): the golden per-run digest matrix that golden_test.go
// diffs against, and the full paper-table sweep in results_sweep.txt.
// Regenerate them only when an intentional modeling change shifts the
// numbers, and review the diff like source.
//
//go:generate go run ./cmd/ptbgolden -q -o testdata/golden/matrix_scale025.txt
//go:generate go run ./cmd/ptbgolden -q -cores 64,256 -benches ocean,fft -techs none,ptb -cluster 16 -scale 0.01 -o testdata/golden/matrix_bigchip.txt
//go:generate go run ./cmd/ptbsweep -exp all -scale 0.25 -q -o results_sweep.txt

import (
	"context"
	"fmt"

	"ptbsim/internal/core"
	"ptbsim/internal/metrics"
	"ptbsim/internal/sim"
	"ptbsim/internal/workload"
)

// Technique selects the power-budget enforcement mechanism.
type Technique string

// The techniques evaluated in the paper (§III.C, §III.E).
const (
	// None runs without power control (the normalization base case).
	None Technique = "none"
	// DVFS is the five-mode voltage/frequency governor.
	DVFS Technique = "dvfs"
	// DFS scales frequency only.
	DFS Technique = "dfs"
	// TwoLevel combines DVFS with per-cycle microarchitectural throttling.
	TwoLevel Technique = "2level"
	// PTB is Power Token Balancing layered over the two-level technique.
	PTB Technique = "ptb"
	// PTBSpinGate extends PTB with the paper's future-work idea: cores the
	// power-pattern detector flags as spinning are duty-cycle sleep-gated
	// for extra energy savings.
	PTBSpinGate Technique = "ptbgate"
	// MaxBIPS is the Isci et al. related-work baseline: global DVFS mode
	// selection maximizing counter-measured throughput under the budget.
	// Included to demonstrate §II.C's argument that counter-driven global
	// management misfires on parallel workloads (spinning looks like
	// useful throughput).
	MaxBIPS Technique = "maxbips"
)

// Policy selects how PTB distributes spare tokens (§III.E.1, §IV.B).
type Policy int

// The distribution policies.
const (
	// ToAll splits spare tokens among all over-budget cores.
	ToAll Policy = iota
	// ToOne gives all spare tokens to the neediest core.
	ToOne
	// Dynamic switches by spinning type: locks→ToOne, barriers→ToAll.
	Dynamic
)

// String names the policy as in the paper's figures.
func (p Policy) String() string { return p.internal().String() }

func (p Policy) internal() core.Policy {
	switch p {
	case ToOne:
		return core.PolicyToOne
	case Dynamic:
		return core.PolicyDynamic
	default:
		return core.PolicyToAll
	}
}

// Config describes one simulation.
type Config struct {
	// Benchmark names a Table-2 workload (see Benchmarks).
	Benchmark string
	// Cores is the CMP size (2–16 in the paper; default 4).
	Cores int
	// Technique is the budget mechanism (default None).
	Technique Technique
	// Policy applies to PTB runs.
	Policy Policy
	// RelaxFrac relaxes the trigger threshold (§IV.C): 0.20 = trigger only
	// 20% above the budget, trading accuracy for energy.
	RelaxFrac float64
	// BudgetFrac is the global budget as a fraction of rated peak power
	// (default 0.5, the paper's headline configuration).
	BudgetFrac float64
	// WorkloadScale shortens the run (1.0 = Table-2 working set).
	WorkloadScale float64
	// MaxCycles is a safety cap (default 50M cycles).
	MaxCycles int64
	// PessimisticPTBLatency uses the 10-cycle worst-case token transfer
	// the paper also evaluates.
	PessimisticPTBLatency bool
	// PTBClusterSize, when >0, uses per-cluster balancers of that many
	// cores instead of one chip-wide balancer (the paper's §III.E.2
	// scalability scheme for large CMPs).
	PTBClusterSize int
	// CheckInvariants enables the runtime invariant layer: conservation-law
	// and consistency checks (power-token conservation, energy-accounting
	// identity, MOESI directory legality, queue occupancy bounds, NoC flit
	// conservation, budget-state sanity) evaluated periodically during the
	// run and once more at the end. A violation fails the run with an error
	// wrapping ErrInvariantViolation. Disabled runs pay one nil comparison
	// per simulated cycle.
	CheckInvariants bool
	// Faults, when non-nil, injects deterministic faults into the run: PTB
	// token-message loss/delay/duplication, NoC link stalls and flit
	// corruption, power-sensor noise and drift, DVFS transition glitches —
	// see FaultSpec. A nil spec and the zero spec both run the ideal
	// machine, bit-identically. Faults compose with CheckInvariants: every
	// conservation invariant keeps holding under injection.
	Faults *FaultSpec
	// IntraParallel shards the simulated chip across that many tiles, each
	// stepped by its own goroutine inside every cycle's tick phase (see
	// DESIGN.md §13). It must be a divisor of the core count; 0 and 1 both
	// run serially. Results are bit-identical at every legal value — tile
	// staging buffers are drained in fixed core order at the quantum
	// barrier, so sharding is a wall-clock knob, never a model knob.
	IntraParallel int
	// Observe, when non-nil, enables epoch-sampled telemetry: every
	// Observe.Every cycles the run records one Sample (per-core power and
	// token views, DVFS mode residency, sync-class occupancy, the PTB
	// token ledger, NoC and cache pressure) into an in-memory ring and
	// streams it to Observe.Observer. Observation is passive — results and
	// digests are bit-identical with it on or off — and a nil Observe costs
	// one nil check per cycle. See Telemetry and the bundled observers.
	Observe *Telemetry
	// Checkpoint, when non-nil with Every > 0, writes periodic crash-recovery
	// snapshots and makes RunContext resume from the latest one automatically
	// (see Checkpoint). Like Observe, it is passive and has no wire form: a
	// checkpointed run's Result is bit-identical to a plain run's.
	Checkpoint *Checkpoint
}

func (c Config) internal() (sim.Config, error) {
	spec, ok := workload.ByName(c.Benchmark)
	if !ok {
		return sim.Config{}, fmt.Errorf("ptbsim: unknown benchmark %q", c.Benchmark)
	}
	cfg := sim.Config{
		Benchmark:      spec,
		Cores:          c.Cores,
		Technique:      sim.Technique(c.Technique),
		Policy:         c.Policy.internal(),
		RelaxFrac:      c.RelaxFrac,
		BudgetFrac:     c.BudgetFrac,
		WorkloadScale:  c.WorkloadScale,
		MaxCycles:      c.MaxCycles,
		PTBClusterSize: c.PTBClusterSize,
		Invariants:     c.CheckInvariants,
		IntraParallel:  c.IntraParallel,
	}
	if c.Technique == "" {
		cfg.Technique = sim.TechNone
	}
	if c.PessimisticPTBLatency {
		lat := core.PessimisticLatency()
		cfg.PTBLatency = &lat
	}
	if c.Faults != nil {
		spec := c.Faults.internal()
		cfg.Faults = &spec
	}
	cfg.Observe = c.Observe.internal()
	return cfg, nil
}

// Result summarizes one run with the paper's metrics.
type Result struct {
	Benchmark string
	Cores     int
	Technique Technique
	Policy    string

	// Cycles is the parallel-phase runtime; Committed the instructions
	// retired across all cores.
	Cycles    int64
	Committed int64

	// EnergyJ is total chip energy; AoPBJ the area over the power budget
	// (Fig. 1), both in joules.
	EnergyJ float64
	AoPBJ   float64

	// BudgetPJ is the global per-cycle power budget in picojoules — the
	// line AoPBJ integrates over and telemetry samples carry, reported here
	// so tooling never has to rebuild the system to learn it.
	BudgetPJ float64

	// MeanPowerW and StdPowerW characterize the chip power trace.
	MeanPowerW float64
	StdPowerW  float64

	// BusyFrac/LockAcqFrac/LockRelFrac/BarrierFrac are the Fig. 3
	// execution-time breakdown; SpinEnergyFrac the Fig. 4 spinning power
	// share.
	BusyFrac       float64
	LockAcqFrac    float64
	LockRelFrac    float64
	BarrierFrac    float64
	SpinEnergyFrac float64

	// OverBudgetFrac is the fraction of cycles the chip exceeded the
	// budget.
	OverBudgetFrac float64

	// MeanTempC and StdTempC summarize the lumped-RC thermal model.
	MeanTempC float64
	StdTempC  float64

	// HitMaxCycles marks a truncated run.
	HitMaxCycles bool

	// ComponentJ breaks total energy down by structure group (frontend,
	// execute, caches, noc, dram, power-mgmt, clock, leakage), in joules.
	ComponentJ map[string]float64

	// TokenDonatedPJ/TokenGrantedPJ/TokenDiscardedPJ are the PTB balancer's
	// token-flow ledger in picojoules (zero for non-PTB techniques), and
	// BalanceRounds the number of balancing rounds run. Conservation —
	// donated = granted + discarded once the run drains — is one of the
	// checked invariants.
	TokenDonatedPJ   float64
	TokenGrantedPJ   float64
	TokenDiscardedPJ float64
	BalanceRounds    int64

	// CohGetS/CohGetX/CohPut/CohFwd/CohInv count coherence transactions
	// across all home directory banks.
	CohGetS int64
	CohGetX int64
	CohPut  int64
	CohFwd  int64
	CohInv  int64

	// NoCMessages and NoCFlits count mesh messages injected and flit-link
	// traversals.
	NoCMessages int64
	NoCFlits    int64

	// Fault-injection telemetry, all zero when Config.Faults is nil or the
	// zero spec. None of these fields enter Digest — the digest format is
	// pinned by the committed golden matrix.

	// Degraded marks a run in which the PTB balancer left ideal operation:
	// a token batch was lost past the retry bound, or the stale-token
	// watchdog fell back to a core's static share.
	Degraded bool
	// FaultsInjected counts every fault decision that fired, all domains.
	FaultsInjected int64
	// TokenLostPJ and TokenDupPJ extend the token ledger under injection:
	// energy of batches lost past the retry bound, and extra energy from
	// duplicated batches (conservation becomes donated + dup = granted +
	// discarded + lost once the run drains).
	TokenLostPJ float64
	TokenDupPJ  float64
	// TokenRetries counts token-batch retransmissions, TokenReportsLost
	// lost core→balancer report messages, and StaleFallbackCycles the
	// core-cycles the watchdog spent on the static-share fallback.
	TokenRetries        int64
	TokenReportsLost    int64
	StaleFallbackCycles int64
	// NoCStallCycles and NoCRetransmits tally injected link faults.
	NoCStallCycles int64
	NoCRetransmits int64
	// DVFSGlitches counts failed DVFS mode transitions.
	DVFSGlitches int64
}

func fromMetrics(r *metrics.RunResult) *Result {
	return &Result{
		Benchmark:      r.Benchmark,
		Cores:          r.Cores,
		Technique:      Technique(r.Technique),
		Policy:         r.Policy,
		Cycles:         r.Cycles,
		Committed:      r.Committed,
		EnergyJ:        r.EnergyJ,
		AoPBJ:          r.AoPBJ,
		BudgetPJ:       r.BudgetPJ,
		MeanPowerW:     r.MeanPowerW,
		StdPowerW:      r.StdPowerW,
		BusyFrac:       r.ClassFrac[0],
		LockAcqFrac:    r.ClassFrac[1],
		LockRelFrac:    r.ClassFrac[2],
		BarrierFrac:    r.ClassFrac[3],
		SpinEnergyFrac: r.SpinEnergyFrac,
		OverBudgetFrac: r.OverBudgetFrac,
		MeanTempC:      r.MeanTempC,
		StdTempC:       r.StdTempC,
		HitMaxCycles:   r.HitMaxCycles,
		ComponentJ:     r.ComponentJ,

		TokenDonatedPJ:   r.TokenDonatedPJ,
		TokenGrantedPJ:   r.TokenGrantedPJ,
		TokenDiscardedPJ: r.TokenDiscardedPJ,
		BalanceRounds:    r.BalanceRounds,
		CohGetS:          r.CohGetS,
		CohGetX:          r.CohGetX,
		CohPut:           r.CohPut,
		CohFwd:           r.CohFwd,
		CohInv:           r.CohInv,
		NoCMessages:      r.NoCMessages,
		NoCFlits:         r.NoCFlits,

		Degraded:            r.Degraded,
		FaultsInjected:      r.FaultsInjected,
		TokenLostPJ:         r.TokenLostPJ,
		TokenDupPJ:          r.TokenDupPJ,
		TokenRetries:        r.TokenRetries,
		TokenReportsLost:    r.TokenReportsLost,
		StaleFallbackCycles: r.StaleFallbackCycles,
		NoCStallCycles:      r.NoCStallCycles,
		NoCRetransmits:      r.NoCRetransmits,
		DVFSGlitches:        r.DVFSGlitches,
	}
}

// RunContext executes one simulation to completion, or until ctx ends —
// cancellation is polled inside the cycle loop, so a cancelled run returns
// within microseconds with an error wrapping ctx.Err(). The config is
// validated first (see Config.Validate for the typed errors).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	if plan, err := cfg.Checkpoint.plan(cfg); err != nil {
		return nil, err
	} else if plan != nil {
		return runWithCheckpoint(ctx, icfg, plan)
	}
	res, err := sim.RunContext(ctx, icfg)
	if err != nil {
		return nil, err
	}
	return fromMetrics(res), nil
}

// Run executes one simulation to completion.
//
// Deprecated: use RunContext, which adds validation with typed errors and
// cancellation. Run is equivalent to RunContext(context.Background(), cfg).
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// TraceResult extends Result with power traces for plotting.
type TraceResult struct {
	Result
	// ChipTrace holds chip power samples (pJ/cycle) every TraceEvery
	// cycles; CoreTrace the same for the traced core (empty if none).
	ChipTrace []float64
	CoreTrace []float64
	// GlobalBudgetPJ is the budget line in pJ/cycle.
	GlobalBudgetPJ float64
}

// traceCapture adapts the Observer stream back into the flat ChipTrace/
// CoreTrace slices TraceResult promises. Full epochs sample on exactly the
// cycles the legacy collector trace did (cycle % every == 0), and ChipPJ
// sums per-core energy in the collector's order, so the rebuilt traces are
// bit-identical to the deprecated engine-side ones; the partial tail flush
// is skipped because the old traces never had one.
type traceCapture struct {
	core      int
	chip      []float64
	coreTrace []float64
}

func (t *traceCapture) Observe(s *Sample) {
	if s.Partial {
		return
	}
	t.chip = append(t.chip, s.ChipPJ)
	if t.core >= 0 && t.core < len(s.CorePJ) {
		t.coreTrace = append(t.coreTrace, s.CorePJ[t.core])
	}
}

// RunTraceContext executes a simulation while recording power traces,
// honoring ctx like RunContext. traceCore may be -1 to record only the
// chip trace.
//
// Deprecated: RunTraceContext predates the Observer API and survives as a
// thin shim over it — it runs the simulation with a Telemetry of period
// traceEvery (replacing any cfg.Observe) and flattens the samples into
// TraceResult. New code should set Config.Observe with a MemoryObserver
// (or any Observer) and use the full Samples, which carry the token ledger,
// mode residency and cache/NoC pressure alongside the power trace.
func RunTraceContext(ctx context.Context, cfg Config, traceEvery int64, traceCore int) (*TraceResult, error) {
	tr := &traceCapture{core: traceCore}
	if traceEvery > 0 {
		cfg.Observe = &Telemetry{Every: traceEvery, Ring: 1, Observer: tr}
	} else {
		cfg.Observe = nil
	}
	res, err := RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &TraceResult{
		Result:         *res,
		ChipTrace:      tr.chip,
		CoreTrace:      tr.coreTrace,
		GlobalBudgetPJ: res.BudgetPJ,
	}, nil
}

// RunTrace executes a simulation while recording power traces.
//
// Deprecated: use RunTraceContext.
func RunTrace(cfg Config, traceEvery int64, traceCore int) (*TraceResult, error) {
	return RunTraceContext(context.Background(), cfg, traceEvery, traceCore)
}

// EDP returns the run's energy-delay product in joule-seconds.
func (r *Result) EDP() float64 {
	return r.EnergyJ * float64(r.Cycles) * (1.0 / 3e9)
}

// ED2P returns the run's energy-delay² product in joule-seconds².
func (r *Result) ED2P() float64 {
	d := float64(r.Cycles) * (1.0 / 3e9)
	return r.EnergyJ * d * d
}

// The normalization helpers operate on Result directly (no round-trip
// through a partial internal struct, so new Result fields can never
// silently drop out of them) and mirror internal/metrics exactly.

// NormalizedEnergyPct returns the paper's "Normalized Energy (%)" of r
// against the base case (negative = savings).
func NormalizedEnergyPct(r, base *Result) float64 {
	if base.EnergyJ == 0 {
		return 0
	}
	return (r.EnergyJ/base.EnergyJ - 1) * 100
}

// NormalizedAoPBPct returns the paper's "Normalized AoPB (%)" against the
// base case (lower = more accurate budget matching).
func NormalizedAoPBPct(r, base *Result) float64 {
	if base.AoPBJ == 0 {
		return 0
	}
	return r.AoPBJ / base.AoPBJ * 100
}

// SlowdownPct returns the performance degradation against the base case
// in percent (positive = slower).
func SlowdownPct(r, base *Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return (float64(r.Cycles)/float64(base.Cycles) - 1) * 100
}

// BenchmarkInfo describes one Table-2 workload.
type BenchmarkInfo struct {
	Name      string
	Suite     string
	InputSize string
}

// Benchmarks lists the evaluated workloads in the paper's order.
func Benchmarks() []BenchmarkInfo {
	var out []BenchmarkInfo
	for _, s := range workload.Catalog() {
		out = append(out, BenchmarkInfo{Name: s.Name, Suite: s.Suite, InputSize: s.InputSize})
	}
	return out
}

// PTBLatency reports the token-transfer latency (send, process, return, in
// cycles) the balancer uses for a given core count (Fig. 8).
func PTBLatency(cores int) (send, process, ret int64) {
	l := core.LatencyFor(cores)
	return l.Send, l.Process, l.Return
}
